package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"netoblivious/alg"
	"netoblivious/internal/core"
	"netoblivious/internal/harness"
	"netoblivious/internal/obs"
)

// runProf executes one registry algorithm under an obs.Probe and writes
// the recorded timeline as Chrome trace-event JSON (open it in
// chrome://tracing or https://ui.perfetto.dev): one "engine" span per
// superstep with its label and message count, plus the block engine's
// per-worker barrier-wait counters and — on a replay engine — the
// schedule-compile span.  -cpuprofile/-memprofile additionally capture
// standard pprof profiles of the same run.
func runProf(args []string) int {
	fs := flag.NewFlagSet("prof", flag.ExitOnError)
	n := fs.Int("n", 1024, "input size (power of two; matmul needs a square)")
	engineName := fs.String("engine", core.DefaultEngine().Name(),
		"execution engine: "+strings.Join(core.EngineNames(), "|"))
	out := fs.String("o", "timeline.json", "timeline output file ('-' = stdout)")
	record := fs.Bool("record", false, "record message pairs during the run")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a post-run heap profile to this file")
	name, rest := splitName(args)
	_ = fs.Parse(rest)
	if name == "" && fs.NArg() >= 1 {
		name = fs.Arg(0)
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "nobl prof: need exactly one algorithm name (see 'nobl algorithms')")
		return 2
	}
	a, ok := harness.TraceAlgorithmByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "nobl prof: unknown algorithm %q (see 'nobl algorithms')\n", name)
		return 1
	}
	if err := a.ValidSize(*n); err != nil {
		fmt.Fprintf(os.Stderr, "nobl prof: %v\nusage: nobl prof %s -n N; run 'nobl algorithms' for size constraints\n", err, a.Name)
		return 2
	}
	engine, err := core.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl prof: %v\n", err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl prof: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nobl prof: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	probe := obs.NewProbe()
	start := time.Now()
	run, err := a.Run(context.Background(), alg.Spec{Engine: engine, Record: *record, Probe: probe}, *n)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl prof: %v\n", err)
		return 1
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl prof: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := probe.WriteChromeTrace(w); err != nil {
		fmt.Fprintf(os.Stderr, "nobl prof: writing timeline: %v\n", err)
		return 1
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl prof: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nobl prof: %v\n", err)
			return 1
		}
	}

	tr := run.Trace
	dest := *out
	if dest == "" || dest == "-" {
		dest = "stdout"
	}
	fmt.Fprintf(os.Stderr, "nobl prof: %s on M(%d) via %s: %d supersteps, %d messages, %d timeline events (%d dropped) in %s -> %s\n",
		a.Name, tr.V, engine.Name(), tr.NumSupersteps(), tr.TotalMessages(),
		probe.Len(), probe.Dropped(), wall.Round(time.Microsecond), dest)
	return 0
}

// obsBenchReport is the schema of `nobl benchobs`: the probe plumbing's
// overhead on the block engine.  baseline and nil_probe run the
// identical configuration (Options with no probe attached); their ratio
// is the noise floor CI gates at 3% so a future change that puts real
// work on the nil-probe path fails loudly.  active_probe (a live
// recording probe) is informational.
type obsBenchReport struct {
	Schema           string  `json:"schema"`
	V                int     `json:"v"`
	Reps             int     `json:"reps"`
	BaselineNsOp     float64 `json:"baseline_ns_op"`
	NilProbeNsOp     float64 `json:"nil_probe_ns_op"`
	ActiveProbeNsOp  float64 `json:"active_probe_ns_op"`
	NilVsBaseline    float64 `json:"nil_vs_baseline"`
	ActiveVsBaseline float64 `json:"active_vs_baseline"`
}

// runBenchObs measures the superstep workload on the block engine in
// three configurations — no probe, explicit nil probe, live probe — and
// writes the obsBenchReport CI archives as BENCH_obs.json.
func runBenchObs(args []string) int {
	fs := flag.NewFlagSet("benchobs", flag.ExitOnError)
	sizeLog := fs.Int("size", 14, "log2 machine size")
	reps := fs.Int("reps", 5, "repetitions per configuration (fastest ns/op wins)")
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	if *sizeLog < 1 || *sizeLog > 24 {
		fmt.Fprintln(os.Stderr, "nobl benchobs: -size wants a log2 machine size in 1..24")
		return 2
	}
	v := 1 << uint(*sizeLog)
	eng, err := core.EngineByName("block")
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchobs: %v\n", err)
		return 1
	}
	live := obs.NewProbe()
	configs := []struct {
		name string
		fn   func() error
	}{
		{"baseline", func() error { return benchCoreWorkload(v, eng) }},
		{"nil_probe", func() error { return benchCoreWorkloadOpt(v, core.Options{Engine: eng, Probe: nil}) }},
		{"active_probe", func() error {
			live.Reset()
			return benchCoreWorkloadOpt(v, core.Options{Engine: eng, Probe: live})
		}},
	}
	// Interleave the configurations across reps so clock drift and
	// thermal state hit all three evenly.
	best := map[string]float64{}
	for rep := 0; rep < *reps; rep++ {
		for _, c := range configs {
			ns, _, err := measureNsOp(c.fn)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nobl benchobs: %s: %v\n", c.name, err)
				return 1
			}
			if b, ok := best[c.name]; !ok || ns < b {
				best[c.name] = ns
			}
		}
	}
	report := obsBenchReport{
		Schema:           "nobl/bench-obs/v1",
		V:                v,
		Reps:             *reps,
		BaselineNsOp:     best["baseline"],
		NilProbeNsOp:     best["nil_probe"],
		ActiveProbeNsOp:  best["active_probe"],
		NilVsBaseline:    best["nil_probe"] / best["baseline"],
		ActiveVsBaseline: best["active_probe"] / best["baseline"],
	}
	fmt.Fprintf(os.Stderr, "nobl benchobs: v=%d baseline %.0f ns/op, nil probe %.0f (%.3fx), active probe %.0f (%.3fx)\n",
		v, report.BaselineNsOp, report.NilProbeNsOp, report.NilVsBaseline,
		report.ActiveProbeNsOp, report.ActiveVsBaseline)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl benchobs: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchobs: %v\n", err)
		return 1
	}
	return 0
}
