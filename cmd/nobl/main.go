// Command nobl runs the reproduction experiments of the network-oblivious
// algorithms framework, prints their tables, and records/analyzes
// communication traces.
//
// Usage:
//
//	nobl list                     enumerate experiments
//	nobl run E1 [E3 ...]          run selected experiments
//	nobl run all                  run the full suite
//	nobl algorithms               enumerate traceable algorithms
//	nobl trace <alg> -n N -o F    run an algorithm, write its trace JSON
//	nobl stat F [-p P] [-sigma σ] analyze a stored trace on M(p,σ) and the
//	                              network presets
//
// Flags:
//
//	-quick    use reduced problem sizes
//	-md       emit GitHub-flavored markdown instead of aligned text
//	-engine   execution engine for all specification-model runs
//	          (block, the sharded default, or goroutine, the reference)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netoblivious/internal/core"
	"netoblivious/internal/dbsp"
	"netoblivious/internal/eval"
	"netoblivious/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	md := flag.Bool("md", false, "emit markdown tables")
	engineName := flag.String("engine", core.DefaultEngine().Name(),
		"execution engine: "+strings.Join(core.EngineNames(), "|"))
	flag.Usage = usage
	flag.Parse()
	engine, err := core.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl: %v\n", err)
		os.Exit(2)
	}
	// Algorithm packages run the specification model internally; the
	// process-wide default makes the flag reach every one of them.
	core.SetDefaultEngine(engine)
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %-72s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
	case "run":
		ids := args[1:]
		if len(ids) == 0 || (len(ids) == 1 && strings.EqualFold(ids[0], "all")) {
			ids = nil
			for _, e := range harness.Experiments() {
				ids = append(ids, e.ID)
			}
		}
		cfg := harness.Config{Quick: *quick, Engine: engine}
		for _, id := range ids {
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "nobl: unknown experiment %q (try 'nobl list')\n", id)
				os.Exit(1)
			}
			tables, err := e.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nobl: %s failed: %v\n", e.ID, err)
				os.Exit(1)
			}
			for _, t := range tables {
				if *md {
					fmt.Println(t.Markdown())
				} else {
					fmt.Println(t.Text())
				}
			}
		}
	case "algorithms":
		for _, a := range harness.TraceAlgorithms() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
	case "trace":
		runTrace(args[1:])
	case "stat":
		runStat(args[1:])
	default:
		usage()
		os.Exit(2)
	}
}

func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 1024, "input size (power of two; matmul needs a square)")
	out := fs.String("o", "", "output file (default stdout)")
	name, rest := splitName(args)
	_ = fs.Parse(rest)
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0)
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "nobl trace: need exactly one algorithm name (see 'nobl algorithms')")
		os.Exit(2)
	}
	alg, ok := harness.TraceAlgorithmByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "nobl trace: unknown algorithm %q\n", name)
		os.Exit(1)
	}
	tr, err := alg.Run(*n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl trace: %v\n", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.EncodeJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "nobl trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nobl: %s on M(%d): %d supersteps, %d messages\n",
		alg.Name, tr.V, tr.NumSupersteps(), tr.TotalMessages())
}

func runStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	p := fs.Int("p", 0, "fold onto p processors (default: all powers of two)")
	sigma := fs.Float64("sigma", 0, "latency/synchronization cost σ")
	name, rest := splitName(args)
	_ = fs.Parse(rest)
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0)
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "nobl stat: need exactly one trace file")
		os.Exit(2)
	}
	f, err := os.Open(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl stat: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := core.DecodeJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl stat: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: v=%d, %d supersteps, %d messages\n\n", tr.V, tr.NumSupersteps(), tr.TotalMessages())
	ps := []int{}
	if *p != 0 {
		ps = append(ps, *p)
	} else {
		for q := 2; q <= tr.V; q *= 2 {
			ps = append(ps, q)
		}
	}
	fmt.Printf("%-8s %-14s %-10s %-10s %-12s\n", "p", "H(n,p,σ)", "α", "γ", "supersteps")
	for _, q := range ps {
		fl := eval.Fold(tr, q)
		fmt.Printf("%-8d %-14.0f %-10.3f %-10.3f %-12d\n",
			q, fl.H(*sigma), eval.Wiseness(tr, q), eval.Fullness(tr, q), fl.Supersteps())
	}
	pq := ps[len(ps)-1]
	fmt.Printf("\ncommunication time D(n,%d,g,ℓ) on the network presets:\n", pq)
	for _, pr := range dbsp.Presets(pq) {
		fmt.Printf("  %-20s D = %.0f\n", pr.Name, dbsp.CommTime(tr, pr))
	}
}

// splitName peels a leading positional argument off args so subcommand
// flags may appear before or after it.
func splitName(args []string) (name string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

func usage() {
	fmt.Fprintf(os.Stderr, `nobl — network-oblivious algorithms experiment runner

usage:
  nobl [flags] list
  nobl [flags] run <ID>... | all
  nobl algorithms
  nobl trace <alg> [-n N] [-o file]
  nobl stat <file> [-p P] [-sigma σ]

flags:
  -quick   reduced problem sizes
  -md      markdown output
  -engine  execution engine (block|goroutine)
`)
}
