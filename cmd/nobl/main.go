// Command nobl runs the reproduction experiments of the network-oblivious
// algorithms framework, renders their structured results, and
// records/analyzes communication traces.
//
// Usage:
//
//	nobl list                     enumerate experiments
//	nobl run E1 [E3 ...]          run selected experiments
//	nobl run all                  run the full suite
//	nobl algorithms               enumerate traceable algorithms
//	nobl trace <alg> -n N -o F    run an algorithm, stream its trace JSON
//	                              (-o - pipes to stdout; -record keeps
//	                              message pairs; peak memory is the
//	                              largest superstep, not the trace)
//	nobl stat F [-p P] [-sigma σ] analyze a stored trace on M(p,σ) and the
//	                              network presets in one streaming pass
//	                              ('-' reads stdin; -cache adds the
//	                              single-pass ideal-cache miss curve)
//	nobl benchnet [-p P] [-o F]   benchmark the routing engine across every
//	                              topology and strategy (JSON report)
//	nobl benchcore [-o F]         benchmark every execution engine on the
//	                              superstep workload (JSON report);
//	                              -traceout adds the streaming-trace
//	                              memory report (BENCH_trace.json)
//	nobl prof <alg> [-n N] [-o F] run one algorithm under the engine probe
//	                              and write a Chrome trace-event timeline;
//	                              -cpuprofile/-memprofile add pprof output
//	nobl benchobs [-o F]          measure the probe plumbing's overhead on
//	                              the block engine (JSON report)
//
// Flags:
//
//	-quick      use reduced problem sizes
//	-format F   output format: text (default), md, json, csv
//	-out DIR    write per-experiment files into DIR instead of stdout
//	-parallel N run up to N experiments concurrently (0 = GOMAXPROCS);
//	            output is byte-identical at any parallelism
//	-bench F    write a wall-clock/trace-store bench report to F (JSON)
//	-engine     execution engine for all specification-model runs; run
//	            'nobl algorithms' for the list (block, the sharded
//	            default; goroutine, the reference; replay, the
//	            schedule-caching engine for repeated static runs)
//
// Exit status: 0 when every selected experiment ran and every check
// passed; 1 when an experiment failed to run or any check failed; 2 on
// usage errors.  One summary line per experiment is printed to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netoblivious/alg"
	"netoblivious/internal/cachesim"
	"netoblivious/internal/core"
	"netoblivious/internal/dbsp"
	"netoblivious/internal/eval"
	"netoblivious/internal/harness"
	"netoblivious/internal/network"
	"netoblivious/internal/obs"
	"netoblivious/internal/service"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	md := flag.Bool("md", false, "emit markdown (deprecated alias for -format md)")
	format := flag.String("format", "text", "output format: text|md|json|csv")
	outDir := flag.String("out", "", "write per-experiment files into this directory")
	parallel := flag.Int("parallel", 0, "max concurrent experiments (0 = GOMAXPROCS, 1 = sequential)")
	benchPath := flag.String("bench", "", "write a wall-clock + trace-store bench report (JSON) to this file")
	engineName := flag.String("engine", core.DefaultEngine().Name(),
		"execution engine: "+strings.Join(core.EngineNames(), "|"))
	logLevel := flag.String("log-level", "warn", "diagnostic log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text|json")
	flag.Usage = usage
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl: %v\n", err)
		os.Exit(2)
	}
	// Diagnostic logging rides slog's default logger; the warn default
	// keeps the CLI's stderr contract (summary lines only) unchanged.
	slog.SetDefault(logger)
	engine, err := core.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl: %v\n", err)
		os.Exit(2)
	}
	formatSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "format" {
			formatSet = true
		}
	})
	if *md && !formatSet {
		*format = "md" // deprecated alias; an explicit -format wins
	}
	f, err := harness.ParseFormat(*format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl: %v\n", err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %-72s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
	case "run":
		cfg := harness.Config{
			Quick:    *quick,
			Engine:   engine,
			Parallel: *parallel,
			Store:    harness.NewTraceStore(),
		}
		os.Exit(runSuite(cfg, f, *outDir, *benchPath, args[1:]))
	case "algorithms":
		for _, a := range harness.TraceAlgorithms() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
			fmt.Printf("%-16s   sizes: %s (defaults %s)\n", "", a.SizeDoc, formatSizes(a.DefaultSizes()))
		}
		fmt.Printf("\nengines (-engine): %s\n", strings.Join(core.EngineNames(), ", "))
	case "trace":
		runTrace(engine, args[1:])
	case "stat":
		runStat(args[1:])
	case "prof":
		os.Exit(runProf(args[1:]))
	case "benchnet":
		os.Exit(runBenchNet(args[1:]))
	case "benchcore":
		os.Exit(runBenchCore(args[1:]))
	case "benchobs":
		os.Exit(runBenchObs(args[1:]))
	case "remote":
		os.Exit(runRemote(f, args[1:]))
	default:
		usage()
		os.Exit(2)
	}
}

// runRemote drives a shared nobld daemon instead of computing locally.
// The subcommand comes first; its flags follow (before or after the
// positional argument):
//
//	nobl remote algorithms [-addr URL]
//	nobl remote analyze <alg> [-addr URL] [-n N] [-kind K] [-p P] [-sigma S] [-wait] [-priority P]
//	nobl remote job <id> [-addr URL] [-cancel]
//	nobl remote metrics [-addr URL]
//	nobl remote cluster [-addr URL] [-key K]
//
// Documents come back in the same schema `nobl -format json run` emits
// and are rendered through the same sinks (-format applies).
func runRemote(f harness.Format, args []string) int {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:7413", "nobld base URL")
	n := fs.Int("n", 1024, "input size")
	kind := fs.String("kind", "trace", "analysis kind (bounds|machines|trace|dbsp|cache|network)")
	p := fs.Int("p", 0, "evaluation machine processors (0 = server default sweep)")
	sigma := fs.Float64("sigma", 0, "evaluation machine σ")
	topology := fs.String("topology", "", "kind network: topology family ("+strings.Join(network.TopologyNames(), "|")+"; empty = all valid at p)")
	strategy := fs.String("strategy", "", "kind network: routing strategy ("+strings.Join(network.RouterNames(), "|")+"; empty = shortest-path)")
	seed := fs.Int64("seed", 0, "kind network: seed for randomized strategies (0 = server default)")
	wait := fs.Bool("wait", true, "block until asynchronous analyses complete")
	priority := fs.Int("priority", 0, "job priority (higher runs first)")
	cancel := fs.Bool("cancel", false, "with 'job': cancel instead of show")
	key := fs.String("key", "", "with 'cluster': look up which node owns this cache key")
	sub, rest := splitName(args)
	name := ""
	if sub == "analyze" || sub == "job" {
		// The algorithm / job id may precede the flags.
		name, rest = splitName(rest)
	}
	_ = fs.Parse(rest)
	if name == "" && fs.NArg() >= 1 {
		name = fs.Arg(0)
	}
	ctx := context.Background()
	client := service.NewClient(*addr)
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "nobl remote: %v\n", err)
		return 1
	}
	switch sub {
	case "algorithms":
		resp, err := client.Algorithms(ctx)
		if err != nil {
			return fail(err)
		}
		for _, a := range resp.Algorithms {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
			if a.SizeDoc != "" {
				fmt.Printf("%-16s   sizes: %s (defaults %s)\n", "", a.SizeDoc, formatSizes(a.DefaultSizes))
			}
		}
		fmt.Printf("kinds: %v (engine %s)\n", resp.Kinds, resp.Engine)
		fmt.Printf("topologies: %v; strategies: %v\n", resp.Topologies, resp.Strategies)
	case "analyze":
		if name == "" && *kind != "machines" && *kind != "network" {
			fmt.Fprintln(os.Stderr, "nobl remote analyze: need an algorithm name")
			return 2
		}
		req := service.Request{
			Algorithm: name,
			Kind:      service.Kind(*kind),
			N:         *n,
			Topology:  *topology,
			Strategy:  *strategy,
			Seed:      *seed,
			Priority:  *priority,
			Wait:      *wait,
		}
		if *p != 0 {
			req.Machines = []service.MachineSpec{{P: *p, Sigma: *sigma}}
		}
		resp, err := client.Analyze(ctx, req)
		if err != nil {
			return fail(err)
		}
		if resp.JobID != "" && resp.Document == nil {
			// Asynchronous submission: follow the job to completion.
			fmt.Fprintf(os.Stderr, "nobl remote: job %s %s; streaming progress\n", resp.JobID, resp.Status)
			info, err := client.WaitJob(ctx, resp.JobID, func(ev service.Event) {
				fmt.Fprintf(os.Stderr, "nobl remote: [%s] %s %s\n", resp.JobID, ev.Stage, ev.Detail)
			})
			if err != nil {
				return fail(err)
			}
			if info.Response == nil {
				return fail(fmt.Errorf("job %s finished %s without a response", resp.JobID, info.Status))
			}
			resp = *info.Response
		}
		if resp.Error != "" {
			return fail(fmt.Errorf("%s: %s", resp.Status, resp.Error))
		}
		if err := renderDocument(f, resp.Document); err != nil {
			return fail(err)
		}
		if resp.Cached {
			fmt.Fprintln(os.Stderr, "nobl remote: served from cache")
		}
	case "job":
		if name == "" {
			fmt.Fprintln(os.Stderr, "nobl remote job: need a job id")
			return 2
		}
		var info service.JobInfo
		var err error
		if *cancel {
			info, err = client.CancelJob(ctx, name)
		} else {
			info, err = client.Job(ctx, name)
		}
		if err != nil {
			return fail(err)
		}
		fmt.Printf("job %s: %s (%s %s n=%d)\n", info.ID, info.Status, info.Request.Kind, info.Request.Algorithm, info.Request.N)
		for _, ev := range info.Events {
			fmt.Printf("  %2d %-10s %s\n", ev.Seq, ev.Stage, ev.Detail)
		}
		if info.Response != nil && info.Response.Document != nil {
			if err := renderDocument(f, info.Response.Document); err != nil {
				return fail(err)
			}
		}
	case "metrics":
		snap, err := client.Metrics(ctx)
		if err != nil {
			return fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return fail(err)
		}
	case "cluster":
		view, err := client.Cluster(ctx, *key)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("mode: %s (engine %s)\n", view.Mode, view.Engine)
		if view.Mode != "single" {
			fmt.Printf("ring: %d members, %d vnodes, seed %d\n", len(view.Members), view.VNodes, view.Seed)
			for _, p := range view.Peers {
				mark, state := " ", "down"
				if p.Self {
					mark = "*"
				}
				if p.Healthy {
					state = "up"
				}
				line := fmt.Sprintf("%s %-28s %-4s checks=%d", mark, p.Addr, state, p.Checks)
				if p.Error != "" {
					line += " error=" + p.Error
				}
				fmt.Println(line)
			}
		}
		if view.Ownership != nil {
			o := view.Ownership
			where := o.Owner
			if o.Local {
				where += " (local)"
			}
			fmt.Printf("key %s -> %s\n", o.RouteKey, where)
		}
	default:
		fmt.Fprintln(os.Stderr, "nobl remote: need one of algorithms|analyze|job|metrics|cluster")
		return 2
	}
	return 0
}

// renderDocument writes a service document through the standard sinks.
func renderDocument(f harness.Format, doc *harness.Document) error {
	if doc == nil {
		return fmt.Errorf("no document in response")
	}
	if f == harness.FormatJSON {
		return harness.EncodeDocument(os.Stdout, *doc)
	}
	sink, err := harness.NewSink(f, os.Stdout, harness.Config{})
	if err != nil {
		return err
	}
	for _, rec := range doc.Records {
		if err := sink.Write(rec); err != nil {
			return err
		}
	}
	return sink.Close()
}

// runSuite executes the selected experiments, renders them through the
// chosen sink, prints one pass/fail summary line per experiment, writes
// the optional bench report, and returns the process exit code.
func runSuite(cfg harness.Config, f harness.Format, outDir, benchPath string, ids []string) int {
	start := time.Now()
	recs, err := harness.RunSuite(cfg, ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl: %v (try 'nobl list')\n", err)
		return 1
	}
	total := time.Since(start)
	if err := render(cfg, f, outDir, recs); err != nil {
		fmt.Fprintf(os.Stderr, "nobl: rendering: %v\n", err)
		return 1
	}
	failures := 0
	for _, rec := range recs {
		passed, failed := rec.CheckCounts()
		switch {
		case rec.Err != "":
			failures++
			fmt.Fprintf(os.Stderr, "nobl: %-4s ERROR %s\n", rec.ID, rec.Err)
		case failed > 0:
			failures++
			fmt.Fprintf(os.Stderr, "nobl: %-4s FAIL  %d/%d checks failed  (%s)\n",
				rec.ID, failed, passed+failed, rec.Elapsed.Round(time.Microsecond))
		default:
			fmt.Fprintf(os.Stderr, "nobl: %-4s PASS  %d checks  (%s)\n",
				rec.ID, passed, rec.Elapsed.Round(time.Microsecond))
		}
	}
	st := cfg.Store.Stats()
	slog.Debug("suite complete",
		"experiments", len(recs),
		"failures", failures,
		"wall_ms", float64(total.Microseconds())/1e3,
		"store_hits", st.Hits,
		"store_misses", st.Misses)
	fmt.Fprintf(os.Stderr, "nobl: %d experiments in %s; trace store: %d hits / %d misses (%.0f%% hit rate)\n",
		len(recs), total.Round(time.Millisecond), st.Hits, st.Misses, 100*st.HitRate())
	if benchPath != "" {
		if err := writeBenchReport(benchPath, cfg, recs, total); err != nil {
			fmt.Fprintf(os.Stderr, "nobl: bench report: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "nobl: bench report written to %s\n", benchPath)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "nobl: %d experiment(s) failing\n", failures)
		return 1
	}
	return 0
}

// writeRecs streams records through one sink of format f onto w.
func writeRecs(cfg harness.Config, f harness.Format, w io.Writer, recs []harness.Record) error {
	sink, err := harness.NewSink(f, w, cfg)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := sink.Write(rec); err != nil {
			return err
		}
	}
	return sink.Close()
}

// render streams the records through one sink on stdout, or — with an
// output directory — one file per experiment (text/md/csv) or a single
// results.json document (json).
func render(cfg harness.Config, f harness.Format, outDir string, recs []harness.Record) error {
	if outDir == "" {
		return writeRecs(cfg, f, os.Stdout, recs)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	writeOne := func(name string, recs []harness.Record) error {
		file, err := os.Create(filepath.Join(outDir, name))
		if err != nil {
			return err
		}
		if err := writeRecs(cfg, f, file, recs); err != nil {
			file.Close()
			return err
		}
		return file.Close()
	}
	if f == harness.FormatJSON {
		return writeOne("results.json", recs)
	}
	for _, rec := range recs {
		if err := writeOne(rec.ID+f.Ext(), []harness.Record{rec}); err != nil {
			return err
		}
	}
	return nil
}

// benchReport is the schema of the -bench output: per-experiment
// wall-clock plus trace-store effectiveness, the series CI archives to
// track harness performance over time.
type benchReport struct {
	Schema   string            `json:"schema"`
	Quick    bool              `json:"quick"`
	Engine   string            `json:"engine"`
	Parallel int               `json:"parallel"`
	TotalMs  float64           `json:"total_wall_ms"`
	Store    benchStore        `json:"trace_store"`
	Results  []benchExperiment `json:"experiments"`
}

type benchStore struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type benchExperiment struct {
	ID     string  `json:"id"`
	WallMs float64 `json:"wall_ms"`
	Pass   bool    `json:"pass"`
}

func writeBenchReport(path string, cfg harness.Config, recs []harness.Record, total time.Duration) error {
	st := cfg.Store.Stats()
	rep := benchReport{
		Schema:   "nobl/bench/v1",
		Quick:    cfg.Quick,
		Engine:   cfg.Engine.Name(),
		Parallel: cfg.Parallel,
		TotalMs:  float64(total.Microseconds()) / 1e3,
		Store:    benchStore{Hits: st.Hits, Misses: st.Misses, HitRate: st.HitRate()},
	}
	for _, rec := range recs {
		rep.Results = append(rep.Results, benchExperiment{
			ID:     rec.ID,
			WallMs: float64(rec.Elapsed.Microseconds()) / 1e3,
			Pass:   rec.Passed(),
		})
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(file)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// networkBenchReport is the schema of `nobl benchnet`: routing
// throughput per (topology, strategy), the series CI archives as
// BENCH_network.json to track engine performance over time.
type networkBenchReport struct {
	Schema  string             `json:"schema"`
	P       int                `json:"p"`
	H       int                `json:"h"`
	Results []networkBenchCase `json:"cases"`
}

type networkBenchCase struct {
	Topology   string  `json:"topology"`
	Strategy   string  `json:"strategy"`
	Makespan   int     `json:"makespan"`
	TotalHops  int     `json:"total_hops"`
	WallMs     float64 `json:"wall_ms"`
	HopsPerSec float64 `json:"packet_hops_per_sec"`
}

// runBenchNet routes a full h-relation on every (topology, strategy)
// pair valid at p and reports packet-hops/second.
func runBenchNet(args []string) int {
	fs := flag.NewFlagSet("benchnet", flag.ExitOnError)
	p := fs.Int("p", 256, "processors (power of two; families invalid at p are skipped)")
	h := fs.Int("h", 8, "h-relation degree")
	reps := fs.Int("reps", 3, "repetitions per case (fastest wall-clock wins)")
	out := fs.String("o", "", "output file (default stdout)")
	_ = fs.Parse(args)
	rep := networkBenchReport{Schema: "nobl/bench-network/v1", P: *p, H: *h}
	rng := rand.New(rand.NewSource(1))
	for _, family := range network.TopologyNames() {
		if !network.TopologyValid(family, *p) {
			fmt.Fprintf(os.Stderr, "nobl benchnet: skipping %s (invalid at p=%d)\n", family, *p)
			continue
		}
		topo, err := network.TopologyByName(family, *p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl benchnet: %v\n", err)
			return 1
		}
		sim := network.NewSim(topo)
		msgs := network.ClusterHRelation(rng, *p, 0, *h)
		for _, strategy := range network.RouterNames() {
			var best networkBenchCase
			for trial := 0; trial < *reps; trial++ {
				router, err := network.RouterByName(strategy, 1)
				if err != nil {
					fmt.Fprintf(os.Stderr, "nobl benchnet: %v\n", err)
					return 1
				}
				start := time.Now()
				res := sim.RouteWith(router, msgs)
				wall := time.Since(start)
				c := networkBenchCase{
					Topology:   family,
					Strategy:   strategy,
					Makespan:   res.Makespan,
					TotalHops:  res.TotalHops,
					WallMs:     wall.Seconds() * 1e3,
					HopsPerSec: float64(res.TotalHops) / wall.Seconds(),
				}
				if trial == 0 || c.WallMs < best.WallMs {
					best = c
				}
			}
			rep.Results = append(rep.Results, best)
			fmt.Fprintf(os.Stderr, "nobl benchnet: %-10s %-14s makespan %-6d %8.2f Mhops/s\n",
				family, strategy, best.Makespan, best.HopsPerSec/1e6)
		}
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl benchnet: %v\n", err)
			return 1
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchnet: %v\n", err)
		return 1
	}
	return 0
}

// coreBenchReport is the schema of `nobl benchcore`: specification-model
// latency per (engine, machine size) on the fixed superstep workload —
// exchanges at a deep label, a mid label and the global label, as real
// algorithms do — plus the warm-replay speedup over the other engines.
// CI archives it as BENCH_core.json to track engine performance over
// time.
type coreBenchReport struct {
	Schema  string           `json:"schema"`
	Reps    int              `json:"reps"`
	Results []coreBenchCase  `json:"cases"`
	Speedup []coreBenchRatio `json:"warm_replay_speedup"`
}

type coreBenchCase struct {
	Engine string  `json:"engine"`
	V      int     `json:"v"`
	NsOp   float64 `json:"ns_per_op"`
	Iters  int     `json:"iters"`
}

type coreBenchRatio struct {
	V           int     `json:"v"`
	VsBlock     float64 `json:"vs_block"`
	VsGoroutine float64 `json:"vs_goroutine"`
}

// benchCoreWorkload runs the fixed superstep mix on the given engine and
// machine size (the same mix the BenchmarkRun series uses).
func benchCoreWorkload(v int, eng core.Engine) error {
	return benchCoreWorkloadOpt(v, core.Options{Engine: eng})
}

// benchCoreWorkloadOpt is benchCoreWorkload with full Options control,
// so `nobl benchobs` can thread a probe (or an explicit nil) through the
// identical workload.
func benchCoreWorkloadOpt(v int, opts core.Options) error {
	labels := []int{core.Log2(v) - 1, 2, 0}
	if v < 8 {
		labels = []int{0}
	}
	_, err := core.RunOpt(v, func(vp *core.VP[int64]) {
		var acc int64
		for _, lab := range labels {
			partner := vp.ID() ^ (v >> uint(lab+1))
			vp.Send(partner, int64(vp.ID())+acc)
			vp.Sync(lab)
			if m, ok := vp.Receive(); ok {
				acc += m
			}
		}
		vp.Sync(0)
	}, opts)
	return err
}

// measureNsOp times fn over enough iterations to damp timer noise and
// returns ns/op with the iteration count used.
func measureNsOp(fn func() error) (float64, int, error) {
	start := time.Now()
	if err := fn(); err != nil {
		return 0, 0, err
	}
	first := time.Since(start)
	iters := 1
	if target := 50 * time.Millisecond; first < target {
		iters = int(target/(first+1)) + 1
		if iters > 2000 {
			iters = 2000
		}
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), iters, nil
}

// traceBenchReport is the schema of `nobl benchcore -traceout`: the peak
// live heap of a recorded run streamed into a sink, next to the bytes
// the same trace would occupy accumulated in memory.  CI archives it as
// BENCH_trace.json and gates peak_delta_bytes against a fixed budget
// independent of n — the O(largest superstep) streaming guarantee.
type traceBenchReport struct {
	Schema           string  `json:"schema"`
	Algorithm        string  `json:"algorithm"`
	N                int     `json:"n"`
	V                int     `json:"v"`
	Supersteps       int     `json:"supersteps"`
	Messages         int64   `json:"messages"`
	InMemBytes       int64   `json:"inmem_bytes"`
	LargestStepBytes int64   `json:"largest_step_bytes"`
	BaselineBytes    uint64  `json:"baseline_bytes"`
	PeakLiveBytes    uint64  `json:"peak_live_bytes"`
	PeakDeltaBytes   uint64  `json:"peak_delta_bytes"`
	WallMs           float64 `json:"wall_ms"`
}

// memSampleSink wraps a sink and samples the live heap at every
// superstep boundary — before the wrapped sink consumes the record, so
// the sample includes the pending superstep's pairs.  It also sums what
// an in-memory trace of the same run would occupy, giving the
// streamed-vs-accumulated comparison without ever accumulating.
type memSampleSink struct {
	inner    core.TraceSink
	steps    int
	messages int64
	inmem    int64
	largest  int64
	peak     uint64
}

func (s *memSampleSink) BeginTrace(v, logV int) error { return s.inner.BeginTrace(v, logV) }

func (s *memSampleSink) WriteStep(rec core.StepRec) error {
	sz := int64(64 + len(rec.Degree)*8 + rec.Pairs.Len()*8)
	s.inmem += sz
	if sz > s.largest {
		s.largest = sz
	}
	s.steps++
	s.messages += rec.Messages
	runtime.GC() // drop garbage so the sample is live bytes, not churn
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	return s.inner.WriteStep(rec)
}

func (s *memSampleSink) EndTrace(runErr error) error { return s.inner.EndTrace(runErr) }

// runTraceBench measures the streaming footprint of one recorded run and
// writes the traceBenchReport.
func runTraceBench(path, algName string, n int) int {
	a, ok := harness.TraceAlgorithmByName(algName)
	if !ok {
		fmt.Fprintf(os.Stderr, "nobl benchcore: unknown -tracealg %q (see 'nobl algorithms')\n", algName)
		return 1
	}
	if err := a.ValidSize(n); err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchcore: -tracen: %v\n", err)
		return 2
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	sink := &memSampleSink{inner: &core.DiscardSink{}}
	start := time.Now()
	run, err := a.Run(context.Background(), alg.Spec{Record: true, Sink: sink}, n)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
		return 1
	}
	rep := traceBenchReport{
		Schema:           "nobl/bench-trace/v1",
		Algorithm:        a.Name,
		N:                n,
		V:                run.Trace.V,
		Supersteps:       sink.steps,
		Messages:         sink.messages,
		InMemBytes:       sink.inmem,
		LargestStepBytes: sink.largest,
		BaselineBytes:    baseline,
		PeakLiveBytes:    sink.peak,
		WallMs:           wall.Seconds() * 1e3,
	}
	if sink.peak > baseline {
		rep.PeakDeltaBytes = sink.peak - baseline
	}
	file, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(file)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		file.Close()
		fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
		return 1
	}
	if err := file.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "nobl benchcore: %s n=%d streamed in %.0f ms: peak live %.1f MiB over baseline (in-memory trace would hold %.1f MiB)\n",
		a.Name, n, rep.WallMs, float64(rep.PeakDeltaBytes)/(1<<20), float64(rep.InMemBytes)/(1<<20))
	return 0
}

// runBenchCore benchmarks every selectable engine on the superstep
// workload across machine sizes.  The replay engine is measured warm:
// one unmeasured run records, compiles and caches the schedule, so its
// ns/op is the steady-state replay cost the schedule cache delivers.
// With -traceout it additionally measures the streaming-trace footprint
// (traceBenchReport) of one large recorded run.
func runBenchCore(args []string) int {
	fs := flag.NewFlagSet("benchcore", flag.ExitOnError)
	sizesFlag := fs.String("sizes", "10,12,14", "comma-separated log2 machine sizes")
	reps := fs.Int("reps", 3, "repetitions per case (fastest ns/op wins)")
	out := fs.String("o", "", "output file (default stdout)")
	traceOut := fs.String("traceout", "", "also write a streaming-trace memory report (BENCH_trace.json) to this file")
	traceAlg := fs.String("tracealg", "fft", "algorithm for the -traceout probe")
	traceN := fs.Int("tracen", 1<<16, "input size for the -traceout probe")
	_ = fs.Parse(args)
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		lv, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || lv < 1 || lv > 24 {
			fmt.Fprintf(os.Stderr, "nobl benchcore: bad -sizes entry %q (want log2 sizes in 1..24)\n", s)
			return 2
		}
		sizes = append(sizes, 1<<uint(lv))
	}
	rep := coreBenchReport{Schema: "nobl/bench-core/v1", Reps: *reps}
	nsFor := map[string]map[int]float64{}
	for _, engName := range core.EngineNames() {
		nsFor[engName] = map[int]float64{}
		for _, v := range sizes {
			eng, err := core.EngineByName(engName)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
				return 1
			}
			if engName == "replay" {
				// Key the engine and warm its schedule cache so the
				// measurement sees pure replays, not the recording run.
				eng = core.ReplayEngine{
					Key:   core.TraceKey{Algorithm: "benchcore", N: v, Engine: "replay"},
					Store: core.NewScheduleStore(),
				}
				if err := benchCoreWorkload(v, eng); err != nil {
					fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
					return 1
				}
			}
			best := coreBenchCase{Engine: engName, V: v}
			for trial := 0; trial < *reps; trial++ {
				ns, iters, err := measureNsOp(func() error { return benchCoreWorkload(v, eng) })
				if err != nil {
					fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
					return 1
				}
				if trial == 0 || ns < best.NsOp {
					best.NsOp, best.Iters = ns, iters
				}
			}
			nsFor[engName][v] = best.NsOp
			rep.Results = append(rep.Results, best)
			fmt.Fprintf(os.Stderr, "nobl benchcore: %-10s v=%-7d %12.0f ns/op\n", engName, v, best.NsOp)
		}
	}
	for _, v := range sizes {
		r := coreBenchRatio{V: v}
		if ns := nsFor["replay"][v]; ns > 0 {
			r.VsBlock = nsFor["block"][v] / ns
			r.VsGoroutine = nsFor["goroutine"][v] / ns
		}
		rep.Speedup = append(rep.Speedup, r)
		fmt.Fprintf(os.Stderr, "nobl benchcore: v=%-7d warm replay %.1fx vs block, %.1fx vs goroutine\n",
			v, r.VsBlock, r.VsGoroutine)
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
			return 1
		}
		defer file.Close()
		w = file
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "nobl benchcore: %v\n", err)
		return 1
	}
	if *traceOut != "" {
		if code := runTraceBench(*traceOut, *traceAlg, *traceN); code != 0 {
			return code
		}
	}
	return 0
}

// runTrace streams the run's supersteps straight into the output codec:
// the trace is never accumulated in memory, so peak footprint is the
// largest superstep, not n.  The streamed file is byte-identical to the
// in-memory Trace.EncodeJSON of the same run.
func runTrace(engine core.Engine, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 1024, "input size (power of two; matmul needs a square)")
	out := fs.String("o", "-", "output file ('-' = stdout)")
	record := fs.Bool("record", false, "record message pairs ('nobl stat -cache' needs them; grows the trace)")
	name, rest := splitName(args)
	_ = fs.Parse(rest)
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0)
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "nobl trace: need exactly one algorithm name (see 'nobl algorithms')")
		os.Exit(2)
	}
	a, ok := harness.TraceAlgorithmByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "nobl trace: unknown algorithm %q (see 'nobl algorithms')\n", name)
		os.Exit(1)
	}
	// Validate the size before running anything, so a bad -n fails in
	// microseconds with the algorithm's own size doc.
	if err := a.ValidSize(*n); err != nil {
		fmt.Fprintf(os.Stderr, "nobl trace: %v\nusage: nobl trace %s -n N; run 'nobl algorithms' for size constraints\n", err, a.Name)
		os.Exit(2)
	}
	var sink core.TraceSink
	if *out == "" || *out == "-" {
		// Stdout: the JSON writer encodes each superstep as it completes
		// and releases its pooled pairs; nothing else references them.
		jw := core.NewTraceJSONWriter(os.Stdout)
		jw.ReleasePairs = true
		sink = jw
	} else {
		// A file sink writes to <path>.tmp and renames on success, so a
		// failed or interrupted run never leaves a truncated trace file.
		sink = core.NewTraceFileSink(*out, core.TraceJSON)
	}
	run, err := a.Run(context.Background(), alg.Spec{Engine: engine, Record: *record, Sink: sink}, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobl trace: %v\n", err)
		os.Exit(1)
	}
	tr := run.Trace // metadata-only: the steps went to the sink
	fmt.Fprintf(os.Stderr, "nobl: %s on M(%d) via %s: %d supersteps, %d messages (streamed)\n",
		a.Name, tr.V, engine.Name(), tr.NumSupersteps(), tr.TotalMessages())
}

// formatSizes renders a default-size ladder compactly.
func formatSizes(sizes []int) string {
	parts := make([]string, len(sizes))
	for i, n := range sizes {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, ", ")
}

// Cache-simulation parameters of `nobl stat -cache`, matching the nobld
// analysis service: 8-word VP contexts, 8-word cache lines, and a sweep
// of capacities from 256 words to 64K words.
const (
	statCtxWords   = 8
	statBlockWords = 8
)

var statCacheSizes = []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}

// runStat analyzes a stored trace in one streaming pass: the fold
// summary (O(log²v) memory) powers every M(p,σ) point and D-BSP preset,
// and the optional single-pass cache simulation shares the same pass —
// so arbitrarily large trace files, and stdin pipes, work in bounded
// memory.
func runStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	p := fs.Int("p", 0, "fold onto p processors (default: all powers of two)")
	sigma := fs.Float64("sigma", 0, "latency/synchronization cost σ")
	cache := fs.Bool("cache", false, "also simulate the ideal-cache miss curve (the trace must be recorded with 'nobl trace -record')")
	var name string
	rest := args
	if len(args) > 0 && args[0] == "-" {
		// A leading "-" is the stdin pseudo-file, not a flag.
		name, rest = "-", args[1:]
	} else {
		name, rest = splitName(args)
	}
	_ = fs.Parse(rest)
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0)
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "nobl stat: need exactly one trace file ('-' = stdin)")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "nobl stat: %v\n", err)
		os.Exit(1)
	}
	var src core.TraceSource
	var err error
	if name == "-" {
		src, err = core.NewTraceSource(os.Stdin)
	} else {
		src, err = core.OpenTraceFile(name)
	}
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "nobl stat: %v\nusage: nobl stat <file> [-p P] [-sigma σ] [-cache] ('-' reads from stdin)\n", err)
			os.Exit(2)
		}
		fail(err)
	}
	defer src.Close()
	fsum, err := core.NewFoldSummary(src.V())
	if err != nil {
		fail(err)
	}
	// Validate -p against the machine width before streaming anything.
	if *p != 0 {
		if _, err := fsum.TryF(*p); err != nil {
			fmt.Fprintf(os.Stderr, "nobl stat: %v\n", err)
			os.Exit(2)
		}
	}
	var cs *cachesim.CurveSim
	if *cache {
		if cs, err = cachesim.NewCurveSim(src.V(), statCtxWords, statBlockWords, statCacheSizes); err != nil {
			fail(err)
		}
	}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(err)
		}
		if err := fsum.Observe(rec); err != nil {
			fail(err)
		}
		if cs != nil {
			if err := cs.Step(rec); err != nil {
				if errors.Is(err, cachesim.ErrNoPairs) {
					fmt.Fprintf(os.Stderr, "nobl stat: %v\nre-record with 'nobl trace <alg> -record' to enable -cache\n", err)
					os.Exit(1)
				}
				fail(err)
			}
		}
	}
	fmt.Printf("trace: v=%d, %d supersteps, %d messages\n\n", fsum.V(), fsum.NumSupersteps(), fsum.TotalMessages())
	ps := []int{}
	if *p != 0 {
		ps = append(ps, *p)
	} else {
		for q := 2; q <= fsum.V(); q *= 2 {
			ps = append(ps, q)
		}
	}
	fmt.Printf("%-8s %-14s %-10s %-10s %-12s %-12s\n", "p", "H(n,p,σ)", "α", "γ", "supersteps", "messages")
	for _, q := range ps {
		pt := eval.MeasureSummary(fsum, q, *sigma)
		fmt.Printf("%-8d %-14.0f %-10.3f %-10.3f %-12d %-12d\n",
			q, pt.H, pt.Alpha, pt.Gamma, pt.Supersteps, pt.MessageLoad)
	}
	if len(ps) > 0 {
		pq := ps[len(ps)-1]
		fmt.Printf("\ncommunication time D(n,%d,g,ℓ) on the network presets:\n", pq)
		for _, pr := range dbsp.Presets(pq) {
			fmt.Printf("  %-20s D = %.0f\n", pr.Name, dbsp.CommTimeSummary(fsum, pr))
		}
	}
	if cs != nil {
		accesses := cs.Accesses()
		misses := cs.Misses()
		fmt.Printf("\nideal-cache miss curve (context %d words, line %d words, %d accesses):\n",
			statCtxWords, statBlockWords, accesses)
		fmt.Printf("  %-12s %-12s %s\n", "M (words)", "misses", "miss rate")
		for i, m := range statCacheSizes {
			rate := 0.0
			if accesses > 0 {
				rate = float64(misses[i]) / float64(accesses)
			}
			fmt.Printf("  %-12d %-12d %.4f\n", m, misses[i], rate)
		}
	}
}

// splitName peels a leading positional argument off args so subcommand
// flags may appear before or after it.
func splitName(args []string) (name string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

func usage() {
	fmt.Fprintf(os.Stderr, `nobl — network-oblivious algorithms experiment runner

usage:
  nobl [flags] list
  nobl [flags] run <ID>... | all
  nobl algorithms
  nobl trace <alg> [-n N] [-o file|-] [-record]
              stream the run's trace as JSON ('-' = stdout); memory
              stays O(largest superstep), so n beyond RAM works
  nobl stat <file>|- [-p P] [-sigma σ] [-cache]
              analyze a trace file or stdin pipe in one streaming
              pass; -cache adds the ideal-cache miss curve (needs a
              trace recorded with -record)
  nobl benchnet [-p P] [-h H] [-reps R] [-o file]
              routing-engine throughput (packet-hops/sec) across every
              topology x strategy, as a JSON report
  nobl benchcore [-sizes 10,12,14] [-reps R] [-o file]
              [-traceout file [-tracealg A] [-tracen N]]
              execution-engine latency (ns/op per engine and machine
              size, plus the warm-replay speedup), as a JSON report;
              -traceout adds a streaming-trace peak-memory report
  nobl prof <alg> [-n N] [-engine E] [-o timeline.json]
              [-cpuprofile file] [-memprofile file] [-record]
              run one algorithm under the engine probe and write its
              Chrome trace-event timeline (chrome://tracing, Perfetto):
              one span per superstep, per-worker barrier waits on the
              block engine, compile spans on a cold replay
  nobl benchobs [-size 14] [-reps R] [-o file]
              measure the probe plumbing's overhead on the block engine
              (no probe vs nil probe vs live probe), as a JSON report
  nobl remote <algorithms|analyze|job|metrics|cluster> [-addr URL] ...
              target a shared nobld daemon instead of computing locally
              (analyze <alg> [-n N] [-kind K] [-p P] [-sigma σ] [-wait]
               [-topology T] [-strategy S] [-seed X] for kind network;
               cluster [-key K] shows membership, peer health and which
               node owns a cache key)

flags:
  -quick      reduced problem sizes
  -format F   text | md | json | csv
  -out DIR    per-experiment files instead of stdout
  -parallel N concurrent experiments (0 = GOMAXPROCS); output is
              byte-identical at any parallelism
  -bench F    wall-clock + trace-store report (JSON)
  -engine E   execution engine (%s)
  -log-level L, -log-format F
              diagnostic slog output (debug|info|warn|error; text|json)

'nobl run' exits non-zero when any experiment errors or any check fails.
`, strings.Join(core.EngineNames(), "|"))
}
