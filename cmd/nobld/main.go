// Command nobld is the network-oblivious analysis daemon: a long-running
// HTTP service answering analysis queries over the algorithm registry —
// closed-form bounds synchronously, simulation-backed measurements
// through a priority job queue with a bounded worker pool, per-job
// cancellation/timeout, SSE progress streaming, and process-lifetime LRU
// caches with single-flight dedup.
//
// Endpoints:
//
//	POST   /v1/analyze          one analysis request (see internal/service.Request)
//	POST   /v1/analyze/batch    many requests in one call
//	GET    /v1/jobs/{id}        job status, event log, terminal response
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/algorithms       algorithm registry, analysis kinds, and the
//	                            topology families + routing strategies a
//	                            kind "network" request may select (its
//	                            topology/strategy/seed fields)
//	GET    /v1/cluster          cluster membership, per-peer health,
//	                            ?key= ownership lookup
//	GET    /metrics             counters (Prometheus text; ?format=json)
//	GET    /healthz             liveness + build/runtime identity
//
// Usage:
//
//	nobld -addr :7413 -workers 4 -cache-entries 512 -trace-entries 64 \
//	      -queue 1024 -timeout 2m -engine block \
//	      -log-level info -log-format text -log-sample 1 \
//	      -pprof-addr localhost:6060
//
// The -engine flag sets the server-wide default execution engine; any
// registered engine name is accepted (GET /v1/algorithms lists them) and
// a request may override it per call through its "engine" field.
//
// # Cluster mode
//
// With -peers, the daemon becomes one node of a sharded fleet:
//
//	nobld -addr :7421 -self http://hostA:7421 \
//	      -peers http://hostA:7421,http://hostB:7422,http://hostC:7423
//
// The request key space is partitioned across the peers by a seeded
// consistent-hash ring, and the routing is oblivious in the paper's
// sense: which node owns a request depends only on the request key and
// the static (seed, vnodes, peers) configuration — never on load,
// history or a coordinator — so every node computes the same placement
// independently, the way a network-oblivious algorithm commits to its
// communication pattern without knowing the machine.  Any node accepts
// any request; non-owned keys are transparently forwarded to the owning
// shard (one hop, loop-free), concurrent forwards of one key coalesce,
// and completed documents are kept as a bounded local replica
// (-replica-entries) so hot entries stop costing a network hop.  Every
// trace is computed exactly once cluster-wide.  Forwarded requests are
// answered synchronously with the document itself; job IDs remain
// node-local and never leak across nodes.  -ring-seed and -ring-vnodes
// must match across the fleet.
//
// With -route the daemon is instead a stateless router — no caches, no
// workers used, every asynchronous request forwarded to its owner:
//
//	nobld -addr :7420 -route -peers http://hostA:7421,http://hostB:7422
//
// Admission control: -admit-queue sheds enqueues beyond the high-water
// mark with HTTP 429 and a Retry-After derived from observed queue
// waits (the hard -queue bound still answers 503); -max-forwards bounds
// concurrent in-flight forwards the same way.  The bundled
// service.Client honors Retry-After with capped exponential backoff.
//
// Observability: every request is assigned (or inherits, via the
// X-Request-ID header) a correlation ID that appears on the response,
// in the access and job log lines, in job records and SSE events.
// Structured logs go to stderr (-log-format json|text, -log-level,
// -log-sample N to keep every Nth access line).  -pprof-addr serves
// net/http/pprof on a separate listener, off by default so profiling
// is never exposed on the API address.
//
// SIGINT/SIGTERM drain gracefully: the listener stops, running jobs are
// cancelled, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netoblivious/internal/core"
	"netoblivious/internal/obs"
	"netoblivious/internal/service"
)

func main() {
	addr := flag.String("addr", ":7413", "listen address")
	workers := flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "max queued jobs before 503")
	cacheEntries := flag.Int("cache-entries", 512, "result cache LRU capacity (-1 = unbounded)")
	traceEntries := flag.Int("trace-entries", 64, "trace cache LRU capacity (-1 = unbounded; ignored with -trace-mem-budget)")
	traceMemBudget := flag.Int64("trace-mem-budget", 0,
		"trace cache memory budget in bytes; beyond it, runs spill to disk and page back on demand (0 = count-based eviction)")
	traceSpillDir := flag.String("trace-spill-dir", "",
		"directory for spilled traces (default: a fresh temp dir; only with -trace-mem-budget)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job execution timeout")
	engineName := flag.String("engine", core.DefaultEngine().Name(),
		"execution engine: "+strings.Join(core.EngineNames(), "|"))
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	logSample := flag.Int("log-sample", 1, "emit one access-log line per N requests")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	peers := flag.String("peers", "", "comma-separated base URLs of every cluster node (empty = single-node)")
	self := flag.String("self", "", "this node's advertised base URL; must be one of -peers")
	route := flag.Bool("route", false, "stateless router mode: own no shard, forward everything to -peers")
	ringVNodes := flag.Int("ring-vnodes", 0, "virtual nodes per ring member (0 = default; must match across the fleet)")
	ringSeed := flag.Uint64("ring-seed", 0, "consistent-hash placement seed (must match across the fleet)")
	replicaEntries := flag.Int("replica-entries", 0, "read-through replica cache capacity (0 = default 256, -1 = disabled)")
	maxForwards := flag.Int("max-forwards", 0, "max concurrent in-flight forwards before shedding 429 (0 = default 256)")
	admitQueue := flag.Int("admit-queue", 0, "queue-depth high-water mark: shed enqueues beyond it with 429 + Retry-After (0 = disabled)")
	healthInterval := flag.Duration("health-interval", 0, "peer health probe cadence (0 = default 2s)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobld: %v\n", err)
		os.Exit(2)
	}
	engine, err := core.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobld: %v\n", err)
		os.Exit(2)
	}
	cfg := service.Config{
		Workers:        *workers,
		QueueLimit:     *queue,
		CacheEntries:   *cacheEntries,
		TraceEntries:   *traceEntries,
		TraceMemBudget: *traceMemBudget,
		TraceSpillDir:  *traceSpillDir,
		JobTimeout:     *timeout,
		Engine:         engine,
		Logger:         logger,
		LogSample:      *logSample,
		AdmitQueueHigh: *admitQueue,
	}
	if *peers != "" || *route {
		cfg.Cluster = &service.ClusterConfig{
			Self:           *self,
			Peers:          strings.Split(*peers, ","),
			RouteOnly:      *route,
			VNodes:         *ringVNodes,
			Seed:           *ringSeed,
			ReplicaEntries: *replicaEntries,
			MaxForwards:    *maxForwards,
			HealthInterval: *healthInterval,
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobld: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener: the API address
		// must never expose profiling handlers.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "error", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mode := "single"
	switch {
	case *route:
		mode = "router"
	case *peers != "":
		mode = "node"
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("nobld listening",
			"addr", *addr,
			"version", obs.BuildVersion(),
			"engine", engine.Name(),
			"mode", mode,
			"workers", *workers,
			"cache", *cacheEntries,
			"traces", *traceEntries,
			"queue", *queue,
			"timeout", timeout.String())
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Info("nobld shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown", "error", err.Error())
		}
		srv.Close()
		logger.Info("nobld bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			logger.Error("serve", "error", err.Error())
			os.Exit(1)
		}
	}
}
