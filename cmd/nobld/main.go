// Command nobld is the network-oblivious analysis daemon: a long-running
// HTTP service answering analysis queries over the algorithm registry —
// closed-form bounds synchronously, simulation-backed measurements
// through a priority job queue with a bounded worker pool, per-job
// cancellation/timeout, SSE progress streaming, and process-lifetime LRU
// caches with single-flight dedup.
//
// Endpoints:
//
//	POST   /v1/analyze          one analysis request (see internal/service.Request)
//	POST   /v1/analyze/batch    many requests in one call
//	GET    /v1/jobs/{id}        job status, event log, terminal response
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/algorithms       algorithm registry, analysis kinds, and the
//	                            topology families + routing strategies a
//	                            kind "network" request may select (its
//	                            topology/strategy/seed fields)
//	GET    /metrics             counters (Prometheus text; ?format=json)
//	GET    /healthz             liveness
//
// Usage:
//
//	nobld -addr :7413 -workers 4 -cache-entries 512 -trace-entries 64 \
//	      -queue 1024 -timeout 2m -engine block
//
// The -engine flag sets the server-wide default execution engine; any
// registered engine name is accepted (GET /v1/algorithms lists them) and
// a request may override it per call through its "engine" field.
//
// SIGINT/SIGTERM drain gracefully: the listener stops, running jobs are
// cancelled, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netoblivious/internal/core"
	"netoblivious/internal/service"
)

func main() {
	addr := flag.String("addr", ":7413", "listen address")
	workers := flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "max queued jobs before 503")
	cacheEntries := flag.Int("cache-entries", 512, "result cache LRU capacity (-1 = unbounded)")
	traceEntries := flag.Int("trace-entries", 64, "trace cache LRU capacity (-1 = unbounded; ignored with -trace-mem-budget)")
	traceMemBudget := flag.Int64("trace-mem-budget", 0,
		"trace cache memory budget in bytes; beyond it, runs spill to disk and page back on demand (0 = count-based eviction)")
	traceSpillDir := flag.String("trace-spill-dir", "",
		"directory for spilled traces (default: a fresh temp dir; only with -trace-mem-budget)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job execution timeout")
	engineName := flag.String("engine", core.DefaultEngine().Name(),
		"execution engine: "+strings.Join(core.EngineNames(), "|"))
	flag.Parse()

	engine, err := core.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobld: %v\n", err)
		os.Exit(2)
	}
	srv, err := service.New(service.Config{
		Workers:        *workers,
		QueueLimit:     *queue,
		CacheEntries:   *cacheEntries,
		TraceEntries:   *traceEntries,
		TraceMemBudget: *traceMemBudget,
		TraceSpillDir:  *traceSpillDir,
		JobTimeout:     *timeout,
		Engine:         engine,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nobld: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("nobld: listening on %s (engine=%s, workers=%d, cache=%d, traces=%d, queue=%d, timeout=%s)",
			*addr, engine.Name(), *workers, *cacheEntries, *traceEntries, *queue, *timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("nobld: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("nobld: shutdown: %v", err)
		}
		srv.Close()
		log.Printf("nobld: bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			srv.Close()
			log.Fatalf("nobld: %v", err)
		}
	}
}
